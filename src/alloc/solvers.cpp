#include "alloc/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "alloc/incremental_cost.hpp"
#include "obs/telemetry.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace dtse::alloc {

namespace {

/// Groups ordered for the constructive searches: high conflict degree and
/// large footprint first — the classic "most constrained first" rule.
std::vector<std::size_t> search_order(const AssignmentProblem& problem) {
  const std::size_t n = problem.group_count();
  std::vector<std::size_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && problem.conflicting(i, j)) ++degree[i];
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    const auto& ga = problem.app().group(problem.groups()[a]);
    const auto& gb = problem.app().group(problem.groups()[b]);
    if (ga.bits() != gb.bits()) return ga.bits() > gb.bits();
    return a < b;
  });
  return order;
}

/// Per-group optimistic power: the group alone in its ideally sized memory.
/// Any real placement costs at least this much, making it a valid admissible
/// remainder bound for branch-and-bound.
std::vector<double> ideal_power(const AssignmentProblem& problem) {
  std::vector<double> result(problem.group_count());
  for (std::size_t i = 0; i < problem.group_count(); ++i) {
    const auto mem = problem.build_memory({i});
    DTSE_ASSERT(mem.has_value(), "single group memory is always feasible");
    result[i] = mem->power_mw;
  }
  return result;
}

struct SearchState {
  std::vector<std::vector<std::size_t>> members;   ///< per memory
  std::vector<double> memory_area;                 ///< per memory, mm^2
  std::vector<double> memory_power;                ///< per memory, mW
  double area = 0.0;
  double power = 0.0;
};

class BranchAndBound {
 public:
  BranchAndBound(const AssignmentProblem& problem, int memory_count,
                 const SolverOptions& options)
      : problem_(problem),
        memory_count_(memory_count),
        options_(options),
        order_(search_order(problem)),
        ideal_power_(ideal_power(problem)) {
    // Suffix sums of the optimistic remainder bound along the search order.
    remainder_.assign(order_.size() + 1, 0.0);
    for (std::size_t i = order_.size(); i-- > 0;) {
      remainder_[i] = remainder_[i + 1] + ideal_power_[order_[i]];
    }
  }

  AssignmentSolution run() {
    state_.members.assign(static_cast<std::size_t>(memory_count_), {});
    state_.memory_area.assign(static_cast<std::size_t>(memory_count_), 0.0);
    state_.memory_power.assign(static_cast<std::size_t>(memory_count_), 0.0);
    best_.scalar_cost = std::numeric_limits<double>::max();
    best_.feasible = false;
    assignment_.assign(problem_.group_count(), -1);
    recurse(0, 0);
    best_.nodes_explored = nodes_;
    // Search-shape telemetry: totals only, bumped once per run — all three
    // are pure functions of (problem, memory_count, weights), so the
    // registry stays deterministic at any sweep parallelism.
    auto& registry = obs::TelemetryRegistry::global();
    registry.counter("solver.bb.runs").add(1);
    registry.counter("solver.bb.nodes").add(nodes_);
    registry.counter("solver.bb.pruned").add(pruned_);
    registry.counter("solver.bb.incumbents").add(incumbents_);
    return best_;
  }

 private:
  void recurse(std::size_t depth, int used_memories) {
    ++nodes_;
    // Coarse-stride cancellation poll: cheap against the build_memory work a
    // node does, fine-grained enough to stop within a few thousand nodes.
    if (cancelled_ ||
        (options_.cancel != nullptr && (nodes_ & 0x3FFu) == 0 &&
         options_.cancel->cancelled())) {
      cancelled_ = true;
      return;
    }
    if (depth == order_.size()) {
      const double scalar = options_.weights.area_weight * state_.area +
                            options_.weights.power_weight * state_.power;
      if (scalar < best_.scalar_cost) {
        best_.scalar_cost = scalar;
        best_.assignment = assignment_;
        best_.summary = {state_.area, state_.power, 0.0};
        best_.feasible = true;
        ++incumbents_;
      }
      return;
    }
    // Admissible bound: committed cost plus the optimistic power of all
    // unplaced groups (their area is not bounded below except by 0).
    const double bound = options_.weights.area_weight * state_.area +
                         options_.weights.power_weight * (state_.power + remainder_[depth]);
    if (bound >= best_.scalar_cost) {
      ++pruned_;
      return;
    }

    const std::size_t group = order_[depth];
    // Symmetry breaking: a group may open at most one new memory.
    const int try_limit = std::min(memory_count_, used_memories + 1);
    for (int m = 0; m < try_limit; ++m) {
      auto& members = state_.members[static_cast<std::size_t>(m)];
      members.push_back(group);
      const auto mem = problem_.build_memory(members);
      if (mem) {
        const double old_area = state_.memory_area[static_cast<std::size_t>(m)];
        const double old_power = state_.memory_power[static_cast<std::size_t>(m)];
        state_.memory_area[static_cast<std::size_t>(m)] = mem->cost.area_mm2;
        state_.memory_power[static_cast<std::size_t>(m)] = mem->power_mw;
        state_.area += mem->cost.area_mm2 - old_area;
        state_.power += mem->power_mw - old_power;
        assignment_[group] = m;

        recurse(depth + 1, std::max(used_memories, m + 1));

        assignment_[group] = -1;
        state_.area -= mem->cost.area_mm2 - old_area;
        state_.power -= mem->power_mw - old_power;
        state_.memory_area[static_cast<std::size_t>(m)] = old_area;
        state_.memory_power[static_cast<std::size_t>(m)] = old_power;
      }
      members.pop_back();
    }
  }

  const AssignmentProblem& problem_;
  int memory_count_;
  SolverOptions options_;
  std::vector<std::size_t> order_;
  std::vector<double> ideal_power_;
  std::vector<double> remainder_;
  SearchState state_;
  std::vector<int> assignment_;
  AssignmentSolution best_;
  std::uint64_t nodes_ = 0;
  std::uint64_t pruned_ = 0;      ///< subtrees cut by the admissible bound
  std::uint64_t incumbents_ = 0;  ///< times the best solution improved
  bool cancelled_ = false;
};

AssignmentSolution solve_greedy(const AssignmentProblem& problem, int memory_count,
                                const SolverOptions& options) {
  AssignmentSolution solution;
  solution.assignment.assign(problem.group_count(), -1);
  std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(memory_count));
  std::vector<double> mem_area(static_cast<std::size_t>(memory_count), 0.0);
  std::vector<double> mem_power(static_cast<std::size_t>(memory_count), 0.0);
  int used = 0;
  std::uint64_t evaluations = 0;

  for (const auto group : search_order(problem)) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      // A partial constructive assignment is not a solution; report the run
      // as infeasible and let the caller's degradation policy take over.
      solution.feasible = false;
      solution.nodes_explored = evaluations;
      return solution;
    }
    int best_m = -1;
    double best_delta = std::numeric_limits<double>::max();
    double best_area = 0.0;
    double best_power = 0.0;
    const int try_limit = std::min(memory_count, used + 1);
    for (int m = 0; m < try_limit; ++m) {
      auto& mm = members[static_cast<std::size_t>(m)];
      mm.push_back(group);
      const auto mem = problem.build_memory(mm);
      ++evaluations;
      mm.pop_back();
      if (!mem) continue;
      const double delta =
          options.weights.area_weight *
              (mem->cost.area_mm2 - mem_area[static_cast<std::size_t>(m)]) +
          options.weights.power_weight *
              (mem->power_mw - mem_power[static_cast<std::size_t>(m)]);
      if (delta < best_delta) {
        best_delta = delta;
        best_m = m;
        best_area = mem->cost.area_mm2;
        best_power = mem->power_mw;
      }
    }
    if (best_m < 0) {
      solution.feasible = false;
      solution.nodes_explored = evaluations;
      return solution;  // no feasible placement with this memory count
    }
    members[static_cast<std::size_t>(best_m)].push_back(group);
    mem_area[static_cast<std::size_t>(best_m)] = best_area;
    mem_power[static_cast<std::size_t>(best_m)] = best_power;
    solution.assignment[group] = best_m;
    used = std::max(used, best_m + 1);
  }

  const auto summary = problem.evaluate(solution.assignment, memory_count);
  DTSE_ASSERT(summary.has_value(), "greedy produced an infeasible assignment");
  solution.summary = *summary;
  solution.scalar_cost = options.weights.scalarize(*summary);
  solution.feasible = true;
  solution.nodes_explored = evaluations;
  auto& registry = obs::TelemetryRegistry::global();
  registry.counter("solver.greedy.runs").add(1);
  registry.counter("solver.greedy.evaluations").add(evaluations);
  return solution;
}

/// One independent annealing chain.  The chain owns its RNG streams (derived
/// from the options seed and the chain index), derives its start per
/// `SolverOptions::sa_start`, and evaluates moves through the incremental
/// cost engine — a move re-costs only the two memories it touches.
/// `stats` carries the chain's convergence telemetry (totals plus the
/// iteration-stride-sampled series — deterministic, no wall-clock anywhere).
struct ChainOutcome {
  std::vector<int> best_assignment;
  double best_cost = std::numeric_limits<double>::max();
  ChainStats stats;
};

/// Diversifies `state` away from the greedy start it was reset with.  Start
/// derivation draws from `rng` only (its own stream), so a chain's start is a
/// pure function of (seed, chain) no matter how chains are scheduled.
void diversify_start(AssignmentState& state, const AssignmentProblem& problem,
                     int memory_count, const SolverOptions& options,
                     const std::vector<int>& greedy, support::Rng& rng) {
  const std::size_t n = problem.group_count();
  if (options.sa_start == SaStart::kRandomFeasible) {
    std::vector<int> candidate(n);
    for (int attempt = 0; attempt < 32; ++attempt) {
      for (auto& entry : candidate) {
        entry = static_cast<int>(rng.below(static_cast<std::uint64_t>(memory_count)));
      }
      if (state.reset(candidate)) return;
    }
    // Dense conflicts can make random draws hopeless; restore the greedy
    // start (a failed reset leaves the state unusable) and perturb instead.
    const bool ok = state.reset(greedy);
    DTSE_ASSERT(ok, "greedy start must stay feasible");
  }
  // kPerturbedGreedy (and the kRandomFeasible fallback): a burst of random
  // feasible moves, kept regardless of cost — enough kicks to leave the
  // greedy basin while staying feasible by construction.
  const std::size_t kicks = std::max<std::size_t>(2, n / 3);
  std::size_t applied = 0;
  for (std::size_t tries = 0; tries < 8 * kicks && applied < kicks; ++tries) {
    const auto group = static_cast<std::size_t>(rng.below(n));
    const int new_m = static_cast<int>(rng.below(static_cast<std::uint64_t>(memory_count)));
    if (new_m == state.assignment()[group]) continue;
    if (state.apply(group, new_m)) ++applied;
  }
}

ChainOutcome anneal_chain(const AssignmentProblem& problem, int memory_count,
                          const SolverOptions& options, const std::vector<int>& start,
                          std::size_t chain, int iterations) {
  AssignmentState state(problem, memory_count, options.weights,
                        options.sa_incremental ? CostMode::kIncremental
                                               : CostMode::kFullRecost);
  const bool ok = state.reset(start);
  DTSE_ASSERT(ok, "annealing start assignment must be feasible");
  if (chain > 0 && options.sa_start != SaStart::kGreedy) {
    support::Rng start_rng(options.seed ^ 0xD1B54A32D192ED03ULL * (chain + 1));
    diversify_start(state, problem, memory_count, options, start, start_rng);
  }

  ChainOutcome out;
  out.best_assignment = state.assignment();
  out.best_cost = state.scalar_cost();
  double current = state.scalar_cost();
  out.stats.start_cost = current;

  support::Rng rng(options.seed + 0x9E3779B97F4A7C15ULL * (chain + 1));
  double temperature = sa_start_temperature(current, options);
  const double decay = std::pow(1e-3, 1.0 / static_cast<double>(std::max(1, iterations)));

  // Convergence sampling: a fixed iteration stride (~64 samples per chain),
  // so the series is a pure function of (seed, chain, iterations) — never of
  // wall-clock or scheduling.
  const int stride = std::max(1, iterations / 64);
  const auto sample = [&](int it) {
    out.stats.convergence.push_back({it, temperature, current, out.best_cost,
                                     out.stats.accepted, out.stats.reheats});
  };

  // Reheating schedule: `stagnant` counts consecutive iterations without an
  // accepted move (rejected, infeasible and no-op proposals alike); reaching
  // the threshold resets the temperature from the *current* cost, so the
  // chain resumes exploring instead of freezing in place.
  const int reheat_after = options.sa_reheat_stagnation;
  int stagnant = 0;
  int completed = 0;
  for (int it = 0; it < iterations; ++it, temperature *= decay) {
    // Poll every 512 moves: the chain stops with its best-so-far, which can
    // never be worse than the start it was given.
    if (options.cancel != nullptr && (it & 0x1FF) == 0 && options.cancel->cancelled()) {
      break;
    }
    if (reheat_after > 0 && stagnant >= reheat_after) {
      temperature = sa_start_temperature(current, options);
      stagnant = 0;
      ++out.stats.reheats;
    }
    if (it % stride == 0) sample(it);
    completed = it + 1;
    ++stagnant;
    const auto group = static_cast<std::size_t>(rng.below(problem.group_count()));
    const int new_m = static_cast<int>(rng.below(static_cast<std::uint64_t>(memory_count)));
    if (new_m == state.assignment()[group]) continue;
    ++out.stats.moves;
    const auto cost = state.apply(group, new_m);
    if (!cost) continue;  // needs a third port; state unchanged
    const double delta = *cost - current;
    const bool accept =
        delta <= 0.0 || rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9));
    if (!accept) {
      state.revert();
      continue;
    }
    ++out.stats.accepted;
    stagnant = 0;
    current = *cost;
    if (current < out.best_cost) {
      out.best_cost = current;
      out.best_assignment = state.assignment();
    }
  }
  sample(completed);  // closing sample so the series always ends at the final state
  out.stats.best_cost = out.best_cost;
  return out;
}

AssignmentSolution solve_annealing(const AssignmentProblem& problem, int memory_count,
                                   const SolverOptions& options) {
  AssignmentSolution start = solve_greedy(problem, memory_count, options);
  if (!start.feasible) {
    // Greedy could not even construct a start; try a trivial spread.
    start.assignment.assign(problem.group_count(), 0);
    for (std::size_t i = 0; i < problem.group_count(); ++i) {
      start.assignment[i] = static_cast<int>(i % static_cast<std::size_t>(memory_count));
    }
    const auto summary = problem.evaluate(start.assignment, memory_count);
    if (!summary) return start;  // genuinely infeasible start
    start.summary = *summary;
    start.scalar_cost = options.weights.scalarize(*summary);
    start.feasible = true;
  }
  if (problem.group_count() == 0 || memory_count < 2) {
    start.nodes_explored = 0;
    return start;  // no move can change anything
  }

  // Multi-chain restarts: independent chains with distinct RNG streams,
  // started per `sa_start` (chain 0 from the greedy solution, the others
  // diversified).  Each chain writes its own slot, and the
  // winner is picked by a serial scan with strict improvement (ties resolve
  // to the lowest chain index), so the result is deterministic for a fixed
  // (seed, sa_chains) no matter how the chains are scheduled.
  // The move budget is a total: more chains means more restarts, not more
  // work.  Chains beyond one per budgeted move would each be forced to a
  // minimum length and overshoot the budget, so they are dropped.  Every
  // chain gets the same length so the schedule (and therefore the result)
  // does not depend on scheduling order.
  const auto chains = static_cast<std::size_t>(
      std::clamp(options.sa_chains, 1, std::max(1, options.sa_iterations)));
  const int per_chain = options.sa_iterations / static_cast<int>(chains);
  std::vector<ChainOutcome> outcomes(chains);
  support::parallel_for(chains, options.sa_parallelism, [&](std::size_t c) {
    outcomes[c] = anneal_chain(problem, memory_count, options, start.assignment, c, per_chain);
  });

  AssignmentSolution best = start;
  std::uint64_t moves = 0;
  std::uint64_t accepted = 0;
  std::uint64_t reheats = 0;
  const ChainOutcome* winner = nullptr;
  double winning_cost = start.scalar_cost;
  for (const auto& outcome : outcomes) {
    moves += outcome.stats.moves;
    accepted += outcome.stats.accepted;
    reheats += outcome.stats.reheats;
    if (outcome.best_cost < winning_cost) {
      winning_cost = outcome.best_cost;
      winner = &outcome;
    }
  }
  if (winner != nullptr) {
    best.assignment = winner->best_assignment;
    best.scalar_cost = winner->best_cost;
    const auto summary = problem.evaluate(best.assignment, memory_count);
    DTSE_ASSERT(summary.has_value(), "winning chain assignment must be feasible");
    best.summary = *summary;
  }
  best.nodes_explored = moves;
  best.accepted_moves = accepted;
  best.reheats = reheats;
  best.chains.reserve(chains);
  for (auto& outcome : outcomes) best.chains.push_back(std::move(outcome.stats));

  auto& registry = obs::TelemetryRegistry::global();
  registry.counter("solver.sa.runs").add(1);
  registry.counter("solver.sa.moves").add(moves);
  registry.counter("solver.sa.accepted").add(accepted);
  registry.counter("solver.sa.reheats").add(reheats);
  for (const auto& chain : best.chains) {
    registry.histogram("solver.sa.chain_accepted").observe(chain.accepted);
  }
  return best;
}

}  // namespace

double sa_start_temperature(double start_cost, const SolverOptions& options) {
  // A few percent of the starting cost, decayed geometrically by the chain.
  // (An earlier revision also divided by sa_iterations, which froze long
  // chains from the first move; that dead formula is gone.)
  return options.sa_initial_temperature * 0.02 * std::max(start_cost, 1.0);
}

AssignmentSolution solve_assignment(const AssignmentProblem& problem, int memory_count,
                                    const SolverOptions& options) {
  DTSE_CHECK(memory_count >= 1, "need at least one memory");
  if (problem.group_count() == 0) {
    AssignmentSolution empty;
    empty.feasible = true;
    return empty;
  }

  Solver solver = options.solver;
  if (solver == Solver::kAuto) {
    solver = problem.group_count() <= static_cast<std::size_t>(options.bb_group_limit)
                 ? Solver::kBranchAndBound
                 : Solver::kSimulatedAnnealing;
  }
  switch (solver) {
    case Solver::kBranchAndBound: {
      BranchAndBound bb(problem, memory_count, options);
      return bb.run();
    }
    case Solver::kGreedy:
      return solve_greedy(problem, memory_count, options);
    case Solver::kSimulatedAnnealing:
      return solve_annealing(problem, memory_count, options);
    case Solver::kAuto:
      break;
  }
  DTSE_ASSERT(false, "unreachable solver dispatch");
  return {};
}

}  // namespace dtse::alloc
