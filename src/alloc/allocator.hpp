// Memory allocation driver — the outer loop of Section 4.6.
//
// Splits the basic groups into on-chip and off-chip sets, packs the off-chip
// groups into DRAM channels honouring their conflicts, runs the
// signal-to-memory assignment for the on-chip set, and reports the cost
// triple (on-chip area, on-chip power, off-chip power) the paper's tables
// use.  `sweep_allocations` regenerates Table 4 by varying the number of
// on-chip memories; `allocate` with `onchip_memories == 0` picks the best
// count automatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/assignment_problem.hpp"
#include "alloc/solvers.hpp"
#include "graph/conflict_graph.hpp"
#include "ir/application.hpp"
#include "memlib/memory_library.hpp"

namespace dtse::alloc {

/// One off-chip DRAM channel: a bus with one or more commodity parts behind
/// it, serving a set of mutually non-conflicting basic groups.
struct OffchipChannel {
  std::vector<ir::BasicGroupId> groups;
  std::uint64_t words = 0;
  int width_bits = 0;
  memlib::PortCount ports = memlib::PortCount::kSingle;
  memlib::DramSelection selection;
  double power_mw = 0.0;
};

struct AllocationOptions {
  int onchip_memories = 0;      ///< exact count; 0 = pick the cheapest
  int max_onchip_memories = 14;
  std::uint64_t offchip_threshold_words = 64 * 1024;
  std::uint64_t frame_cycles = 20'000'000;  ///< storage cycles actually used
  SolverOptions solver;
};

struct AllocationResult {
  std::vector<MemoryInstance> onchip;
  std::vector<OffchipChannel> offchip;
  memlib::CostSummary summary;
  bool feasible = false;
  int requested_memories = 0;   ///< the N that was asked for
  std::uint64_t search_nodes = 0;
  std::uint64_t accepted_moves = 0;  ///< SA only: kept moves across all chains
  std::uint64_t reheats = 0;         ///< SA only: temperature resets across chains
  /// SA only: the winning solve's per-chain convergence telemetry (empty for
  /// B&B/greedy solves); flows into the obs/ run report.
  std::vector<ChainStats> sa_chains;

  [[nodiscard]] std::string to_string(const ir::Application& app) const;
};

class MemoryAllocator {
 public:
  explicit MemoryAllocator(memlib::MemoryLibrary library) : library_(std::move(library)) {}

  [[nodiscard]] const memlib::MemoryLibrary& library() const { return library_; }

  /// Full allocation for one memory count (or the best count when
  /// options.onchip_memories == 0).
  [[nodiscard]] AllocationResult allocate(const ir::Application& app,
                                          const graph::ConflictGraph& conflicts,
                                          const AllocationOptions& options = {}) const;

  /// Allocation for every memory count in `counts` (Table 4).
  [[nodiscard]] std::vector<AllocationResult> sweep_allocations(
      const ir::Application& app, const graph::ConflictGraph& conflicts,
      const std::vector<int>& counts, AllocationOptions options = {}) const;

  /// Splits group ids into (on-chip, off-chip) by threshold and forced
  /// location.  Exposed for tests and reporting.
  [[nodiscard]] std::pair<std::vector<ir::BasicGroupId>, std::vector<ir::BasicGroupId>>
  partition_groups(const ir::Application& app, const AllocationOptions& options) const;

 private:
  [[nodiscard]] std::vector<OffchipChannel> build_offchip(
      const ir::Application& app, const std::vector<ir::BasicGroupId>& groups,
      const graph::ConflictGraph& conflicts, const AllocationOptions& options) const;

  memlib::MemoryLibrary library_;
};

}  // namespace dtse::alloc
