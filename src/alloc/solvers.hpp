// Solvers for the signal-to-memory assignment problem.
//
// Three strategies with different quality/run-time trade-offs:
//  * exact branch-and-bound with symmetry breaking (optimal, exponential —
//    fine up to ~15 groups, which covers the BTPC demonstrator),
//  * greedy constructive (fast seed / large instances),
//  * simulated annealing starting from the greedy solution (near-optimal on
//    large instances, deterministic under a fixed seed).
//
// The paper's assignment tool "finds the optimal assignment based on cost
// models specific for the target memory technology"; branch-and-bound is the
// reference solver, the others exist for scalability and for the ablation
// benchmark comparing solver quality.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alloc/assignment_problem.hpp"
#include "memlib/memory_cost.hpp"
#include "support/cancellation.hpp"

namespace dtse::alloc {

enum class Solver { kBranchAndBound, kGreedy, kSimulatedAnnealing, kAuto };

[[nodiscard]] constexpr const char* to_string(Solver solver) {
  switch (solver) {
    case Solver::kBranchAndBound: return "branch-and-bound";
    case Solver::kGreedy: return "greedy";
    case Solver::kSimulatedAnnealing: return "simulated-annealing";
    case Solver::kAuto: return "auto";
  }
  return "?";
}

/// Where each annealing chain starts.  Chain 0 always starts from the plain
/// greedy solution, so the multi-chain best-of never loses to greedy; the
/// other chains diversify per this knob.  Start derivation draws from its own
/// RNG stream keyed on (seed, chain), so results are deterministic for a
/// fixed configuration at any parallelism.
enum class SaStart {
  kGreedy,           ///< every chain restarts from the identical greedy solution
  kPerturbedGreedy,  ///< greedy plus a burst of random feasible moves per chain
  kRandomFeasible,   ///< an independent random feasible assignment per chain
};

[[nodiscard]] constexpr const char* to_string(SaStart start) {
  switch (start) {
    case SaStart::kGreedy: return "greedy";
    case SaStart::kPerturbedGreedy: return "perturbed-greedy";
    case SaStart::kRandomFeasible: return "random-feasible";
  }
  return "?";
}

struct SolverOptions {
  Solver solver = Solver::kAuto;
  memlib::CostWeights weights;
  std::uint64_t seed = 1;
  int bb_group_limit = 17;       ///< auto: use B&B up to this many groups
  /// Total annealing move budget, split evenly across the chains.  10x the
  /// pre-incremental default: the incremental cost engine re-costs only the
  /// two memories a move touches, so the larger budget stays near the wall
  /// time of 50k full recosts.
  int sa_iterations = 500000;
  double sa_initial_temperature = 4.0;  ///< relative to the greedy cost
  /// Independent annealing chains with distinct RNG streams, each running
  /// sa_iterations / sa_chains moves; the best chain wins.  Deterministic
  /// for a fixed (seed, sa_chains, sa_start) regardless of `sa_parallelism`.
  int sa_chains = 4;
  /// Chain start diversification (chain 0 always stays pure greedy).
  SaStart sa_start = SaStart::kPerturbedGreedy;
  /// Reheating schedule: after this many consecutive iterations without an
  /// accepted move the chain's temperature is reset to its start value, so a
  /// frozen chain can climb out of a local basin instead of idling through
  /// the rest of its budget.  0 disables reheating (the default — identical
  /// trajectories to the pre-reheat solver).  Deterministic per (seed,
  /// chain): the stagnation counter consumes no randomness.
  int sa_reheat_stagnation = 0;
  /// Worker threads for the chains (0 = hardware concurrency).  Defaults to
  /// serial because the exploration sweeps already parallelize across sweep
  /// points; only affects wall time, never the result.
  unsigned sa_parallelism = 1;
  /// When false, every move is re-costed from scratch — the reference
  /// baseline kept for the ablation/benchmark comparison.  Identical results
  /// either way (the incremental cost is bit-exact), only slower.
  bool sa_incremental = true;
  /// Cooperative cancellation (not owned; may be null).  Every solver polls
  /// it at a coarse stride — annealing chains every few hundred moves, B&B
  /// every few thousand nodes, greedy per group — and returns its best
  /// solution so far when it fires.  A cancelled run is still feasible when
  /// the partial search found any feasible assignment; only determinism
  /// *across different cancellation times* is given up, never within one.
  const support::CancellationToken* cancel = nullptr;
};

/// One sampled point of an annealing chain's convergence trajectory.  The
/// series is a pure function of (seed, chain, iterations): sampling happens
/// at a fixed iteration stride, never on wall-clock, so traces are
/// bit-identical across reruns and `sa_parallelism` settings.
struct ConvergenceSample {
  int iteration = 0;
  double temperature = 0.0;
  double current_cost = 0.0;
  double best_cost = 0.0;
  std::uint64_t accepted = 0;  ///< cumulative accepted moves at this sample
  std::uint64_t reheats = 0;   ///< cumulative temperature resets at this sample
};

/// Per-chain annealing telemetry: totals plus the sampled convergence
/// series.  Surfaced through `AssignmentSolution::chains` so drivers (the
/// obs/ run report, tests) can ask "why did chain 3 converge late" without
/// re-running the solver.
struct ChainStats {
  std::uint64_t moves = 0;     ///< proposed moves (excluding same-memory no-ops)
  std::uint64_t accepted = 0;  ///< moves that were kept
  std::uint64_t reheats = 0;   ///< temperature resets (sa_reheat_stagnation)
  double start_cost = 0.0;     ///< scalar cost of the (diversified) start
  double best_cost = 0.0;      ///< best scalar cost the chain reached
  std::vector<ConvergenceSample> convergence;
};

struct AssignmentSolution {
  std::vector<int> assignment;   ///< memory index per problem-local group
  memlib::CostSummary summary;   ///< on-chip area/power of the assignment
  double scalar_cost = 0.0;
  bool feasible = false;
  std::uint64_t nodes_explored = 0;  ///< search effort (B&B nodes / SA moves)
  std::uint64_t accepted_moves = 0;  ///< SA only: kept moves across all chains
  std::uint64_t reheats = 0;         ///< SA only: temperature resets across chains
  /// SA only: per-chain stats and convergence series, chain index order
  /// (empty for B&B/greedy solves).
  std::vector<ChainStats> chains;
};

/// Initial annealing temperature for a chain starting at `start_cost`: a few
/// percent of the starting cost, so early moves can escape the greedy basin
/// without degenerating into a random walk.  Exposed for tests.
[[nodiscard]] double sa_start_temperature(double start_cost, const SolverOptions& options);

/// Solves the assignment into exactly `memory_count` memories (empty
/// memories are allowed and simply not built).
[[nodiscard]] AssignmentSolution solve_assignment(const AssignmentProblem& problem,
                                                  int memory_count,
                                                  const SolverOptions& options = {});

}  // namespace dtse::alloc
