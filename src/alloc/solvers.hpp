// Solvers for the signal-to-memory assignment problem.
//
// Three strategies with different quality/run-time trade-offs:
//  * exact branch-and-bound with symmetry breaking (optimal, exponential —
//    fine up to ~15 groups, which covers the BTPC demonstrator),
//  * greedy constructive (fast seed / large instances),
//  * simulated annealing starting from the greedy solution (near-optimal on
//    large instances, deterministic under a fixed seed).
//
// The paper's assignment tool "finds the optimal assignment based on cost
// models specific for the target memory technology"; branch-and-bound is the
// reference solver, the others exist for scalability and for the ablation
// benchmark comparing solver quality.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alloc/assignment_problem.hpp"
#include "memlib/memory_cost.hpp"

namespace dtse::alloc {

enum class Solver { kBranchAndBound, kGreedy, kSimulatedAnnealing, kAuto };

[[nodiscard]] constexpr const char* to_string(Solver solver) {
  switch (solver) {
    case Solver::kBranchAndBound: return "branch-and-bound";
    case Solver::kGreedy: return "greedy";
    case Solver::kSimulatedAnnealing: return "simulated-annealing";
    case Solver::kAuto: return "auto";
  }
  return "?";
}

struct SolverOptions {
  Solver solver = Solver::kAuto;
  memlib::CostWeights weights;
  std::uint64_t seed = 1;
  int bb_group_limit = 17;       ///< auto: use B&B up to this many groups
  int sa_iterations = 50000;
  double sa_initial_temperature = 4.0;  ///< relative to the greedy cost
};

struct AssignmentSolution {
  std::vector<int> assignment;   ///< memory index per problem-local group
  memlib::CostSummary summary;   ///< on-chip area/power of the assignment
  double scalar_cost = 0.0;
  bool feasible = false;
  std::uint64_t nodes_explored = 0;  ///< search effort (B&B nodes / SA moves)
};

/// Solves the assignment into exactly `memory_count` memories (empty
/// memories are allowed and simply not built).
[[nodiscard]] AssignmentSolution solve_assignment(const AssignmentProblem& problem,
                                                  int memory_count,
                                                  const SolverOptions& options = {});

}  // namespace dtse::alloc
