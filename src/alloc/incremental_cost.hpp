// Incremental cost engine for the signal-to-memory assignment search.
//
// A simulated-annealing move reassigns ONE group, so only the source and
// destination memories change; every other memory keeps its area and power.
// `AssignmentState` caches one `memlib::CostTerm` per memory plus, per
// memory, a member bitset and conflict/port counts (conflicting pairs and
// self-conflicting members).  A live memory is feasible, so it holds no
// conflict triangle and no conflicting pair with a self-conflicting
// endpoint; its port count is then fully determined by the two counts
// (any pair or self-conflict => dual-port), and a move re-costs its two
// touched memories in O(members) — feasibility and count deltas come from
// bitset intersections with the moved group's adjacency row, instead of the
// O(members^2)-and-worse clique scan of `simultaneous_accesses`.
//
// Correctness anchor: after any move sequence, `scalar_cost()` equals a
// from-scratch `CostWeights::scalarize(problem.evaluate(assignment))`
// bit-for-bit.  This holds because the maintained port decision provably
// matches `simultaneous_accesses` on feasible sets, the touched memories are
// re-costed through the same `member_cost_term` aggregation `build_memory`
// uses (same member order, same SRAM/power model calls), and the per-memory
// terms are summed in memory-index order, mirroring `evaluate`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/assignment_problem.hpp"
#include "memlib/memory_cost.hpp"

namespace dtse::alloc {

/// How `AssignmentState` re-costs a move.
enum class CostMode {
  kIncremental,  ///< re-cost only the two memories the move touches
  kFullRecost,   ///< re-evaluate the whole assignment (reference/baseline)
};

/// A complete assignment with incrementally maintained cost, supporting
/// single-group moves with O(1)-memory undo.
class AssignmentState {
 public:
  AssignmentState(const AssignmentProblem& problem, int memory_count,
                  const memlib::CostWeights& weights,
                  CostMode mode = CostMode::kIncremental);

  /// Loads a complete assignment (one entry per group, each in
  /// [0, memory_count)).  Returns false when any memory is infeasible; the
  /// state must then be reset again before use.
  bool reset(const std::vector<int>& assignment);

  [[nodiscard]] CostMode mode() const { return mode_; }
  [[nodiscard]] const std::vector<int>& assignment() const { return assignment_; }

  /// Scalar objective of the current assignment; identical to scalarizing a
  /// from-scratch `AssignmentProblem::evaluate`.
  [[nodiscard]] double scalar_cost() const { return scalar_; }

  /// On-chip cost aggregate of the current assignment (off-chip channels do
  /// not participate in assignment moves).
  [[nodiscard]] memlib::CostTerm onchip_total() const;

  /// Moves `group` to memory `new_m` (must differ from its current memory)
  /// and returns the new scalar cost, or nullopt when the move would need a
  /// tri-ported memory — the state is then unchanged.  A successful move can
  /// be undone with `revert()`.
  [[nodiscard]] std::optional<double> apply(std::size_t group, int new_m);

  /// Undoes the most recent successful `apply`.
  void revert();

 private:
  struct MemoryState {
    std::vector<std::size_t> members;  ///< ascending problem-local indices
    std::vector<std::uint64_t> bits;   ///< the same members as a bitset
    std::uint64_t pair_conflicts = 0;  ///< conflicting pairs inside the memory
    std::uint64_t self_conflicts = 0;  ///< self-conflicting members
    memlib::CostTerm term;

    /// Port count of a feasible member set (no triangles, no self-edges —
    /// the only states this engine keeps): 2 iff any conflict forces it.
    [[nodiscard]] int ports() const {
      return pair_conflicts > 0 || self_conflicts > 0 ? 2 : 1;
    }
  };
  struct LastMove {
    std::size_t group = 0;
    int from = -1;
    int to = -1;
    memlib::CostTerm from_term;
    memlib::CostTerm to_term;
    std::uint64_t degree_from = 0;  ///< group's conflict degree in the source
    std::uint64_t degree_to = 0;    ///< and in the destination
    double scalar = 0.0;
    bool active = false;
  };

  /// Scalar of the cached per-memory terms, summed in memory-index order to
  /// mirror `AssignmentProblem::evaluate` exactly.
  [[nodiscard]] double scalar_from_terms() const;

  /// `group`'s conflict neighbours inside `mem`, written into `scratch_`
  /// (returns the popcount).
  std::uint64_t neighbours_in(const MemoryState& mem, std::size_t group);

  /// True when adding `group` to the memory whose neighbour set sits in
  /// `scratch_` (with popcount `degree`) would need a third port: the group
  /// is self-conflicting and meets any conflict, conflicts with a
  /// self-conflicting member, or closes a conflict triangle.
  [[nodiscard]] bool scratch_insertion_infeasible(std::uint64_t degree,
                                                 std::size_t group) const;

  const AssignmentProblem* problem_;
  memlib::CostWeights weights_;
  CostMode mode_;
  int memory_count_;
  std::vector<int> assignment_;
  std::vector<MemoryState> memories_;  ///< kIncremental only
  std::vector<std::uint64_t> scratch_;  ///< one bitset row, reused per move
  double scalar_ = 0.0;
  LastMove last_;
};

}  // namespace dtse::alloc
