// Incremental cost engine for the signal-to-memory assignment search.
//
// A simulated-annealing move reassigns ONE group, so only the source and
// destination memories change; every other memory keeps its area and power.
// `AssignmentState` caches one `memlib::CostTerm` per memory plus per-group
// aggregates (words, width, access counts), so a move re-costs two memories
// instead of the whole organization — the O(delta) evaluation that lets
// `sa_iterations` scale ~10x at the same wall time.
//
// Correctness anchor: after any move sequence, `scalar_cost()` equals a
// from-scratch `CostWeights::scalarize(problem.evaluate(assignment))`
// bit-for-bit.  This holds because the touched memories are re-costed with
// the exact computation `build_memory` performs (same member order, same
// `simultaneous_accesses`, same SRAM/power model calls) and the per-memory
// terms are summed in memory-index order, mirroring `evaluate`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/assignment_problem.hpp"
#include "memlib/memory_cost.hpp"

namespace dtse::alloc {

/// How `AssignmentState` re-costs a move.
enum class CostMode {
  kIncremental,  ///< re-cost only the two memories the move touches
  kFullRecost,   ///< re-evaluate the whole assignment (reference/baseline)
};

/// A complete assignment with incrementally maintained cost, supporting
/// single-group moves with O(1)-memory undo.
class AssignmentState {
 public:
  AssignmentState(const AssignmentProblem& problem, int memory_count,
                  const memlib::CostWeights& weights,
                  CostMode mode = CostMode::kIncremental);

  /// Loads a complete assignment (one entry per group, each in
  /// [0, memory_count)).  Returns false when any memory is infeasible; the
  /// state must then be reset again before use.
  bool reset(const std::vector<int>& assignment);

  [[nodiscard]] CostMode mode() const { return mode_; }
  [[nodiscard]] const std::vector<int>& assignment() const { return assignment_; }

  /// Scalar objective of the current assignment; identical to scalarizing a
  /// from-scratch `AssignmentProblem::evaluate`.
  [[nodiscard]] double scalar_cost() const { return scalar_; }

  /// On-chip cost aggregate of the current assignment (off-chip channels do
  /// not participate in assignment moves).
  [[nodiscard]] memlib::CostTerm onchip_total() const;

  /// Moves `group` to memory `new_m` (must differ from its current memory)
  /// and returns the new scalar cost, or nullopt when the move would need a
  /// tri-ported memory — the state is then unchanged.  A successful move can
  /// be undone with `revert()`.
  [[nodiscard]] std::optional<double> apply(std::size_t group, int new_m);

  /// Undoes the most recent successful `apply`.
  void revert();

 private:
  struct MemoryState {
    std::vector<std::size_t> members;  ///< ascending problem-local indices
    memlib::CostTerm term;
  };
  struct LastMove {
    std::size_t group = 0;
    int from = -1;
    int to = -1;
    memlib::CostTerm from_term;
    memlib::CostTerm to_term;
    double scalar = 0.0;
    bool active = false;
  };

  /// Scalar of the cached per-memory terms, summed in memory-index order to
  /// mirror `AssignmentProblem::evaluate` exactly.
  [[nodiscard]] double scalar_from_terms() const;

  const AssignmentProblem* problem_;
  memlib::CostWeights weights_;
  CostMode mode_;
  int memory_count_;
  std::vector<int> assignment_;
  std::vector<MemoryState> memories_;  ///< kIncremental only
  double scalar_ = 0.0;
  LastMove last_;
};

}  // namespace dtse::alloc
