#include "alloc/incremental_cost.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace dtse::alloc {

namespace {

void insert_sorted(std::vector<std::size_t>& members, std::size_t group) {
  members.insert(std::lower_bound(members.begin(), members.end(), group), group);
}

void erase_sorted(std::vector<std::size_t>& members, std::size_t group) {
  const auto it = std::lower_bound(members.begin(), members.end(), group);
  DTSE_DCHECK(it != members.end() && *it == group, "group not a member");
  members.erase(it);
}

constexpr std::uint64_t bit_of(std::size_t group) {
  return std::uint64_t{1} << (group % 64);
}

}  // namespace

AssignmentState::AssignmentState(const AssignmentProblem& problem, int memory_count,
                                 const memlib::CostWeights& weights, CostMode mode)
    : problem_(&problem), weights_(weights), mode_(mode), memory_count_(memory_count) {
  DTSE_CHECK(memory_count >= 1, "need at least one memory");
}

double AssignmentState::scalar_from_terms() const {
  // Sum in memory-index order, skipping empty memories — the exact loop
  // `AssignmentProblem::evaluate` runs, so the floating-point result matches
  // a from-scratch evaluation bit-for-bit.
  memlib::CostSummary summary;
  for (const auto& mem : memories_) {
    if (mem.members.empty()) continue;
    summary.onchip_area_mm2 += mem.term.area_mm2;
    summary.onchip_power_mw += mem.term.power_mw;
  }
  return weights_.scalarize(summary);
}

memlib::CostTerm AssignmentState::onchip_total() const {
  if (mode_ == CostMode::kFullRecost) {
    const auto summary = problem_->evaluate(assignment_, memory_count_);
    DTSE_ASSERT(summary.has_value(), "state holds a feasible assignment");
    return {summary->onchip_area_mm2, summary->onchip_power_mw};
  }
  memlib::CostTerm total;
  for (const auto& mem : memories_) {
    if (!mem.members.empty()) total += mem.term;
  }
  return total;
}

bool AssignmentState::reset(const std::vector<int>& assignment) {
  DTSE_CHECK(assignment.size() == problem_->group_count(), "one entry per group");
  assignment_ = assignment;
  last_.active = false;

  if (mode_ == CostMode::kFullRecost) {
    const auto summary = problem_->evaluate(assignment_, memory_count_);
    if (!summary) return false;
    scalar_ = weights_.scalarize(*summary);
    return true;
  }

  const std::size_t words = problem_->conflict_words();
  scratch_.assign(words, 0);
  memories_.assign(static_cast<std::size_t>(memory_count_), {});
  // Pre-size the member lists so moves never reallocate mid-run.
  for (auto& mem : memories_) {
    mem.members.reserve(assignment_.size());
    mem.bits.assign(words, 0);
  }
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    DTSE_CHECK(assignment_[i] >= 0 && assignment_[i] < memory_count_,
               "assignment entry out of range");
    auto& mem = memories_[static_cast<std::size_t>(assignment_[i])];
    mem.members.push_back(i);
    mem.bits[i / 64] |= bit_of(i);
  }
  const std::uint64_t* self_bits = problem_->self_conflict_bits();
  for (auto& mem : memories_) {
    // The feasibility gate stays with the exact reference computation; the
    // maintained counts only ever describe sets that passed it.
    const auto term = problem_->cost_of_members(mem.members);
    if (!term) return false;
    mem.term = *term;
    std::uint64_t degree_sum = 0;
    for (const auto m : mem.members) {
      const std::uint64_t* row = problem_->conflict_row(m);
      for (std::size_t w = 0; w < words; ++w) degree_sum += std::popcount(row[w] & mem.bits[w]);
    }
    mem.pair_conflicts = degree_sum / 2;  // each pair counted from both ends
    mem.self_conflicts = 0;
    for (std::size_t w = 0; w < words; ++w) {
      mem.self_conflicts += std::popcount(self_bits[w] & mem.bits[w]);
    }
  }
  scalar_ = scalar_from_terms();
  return true;
}

std::uint64_t AssignmentState::neighbours_in(const MemoryState& mem, std::size_t group) {
  const std::uint64_t* row = problem_->conflict_row(group);
  std::uint64_t degree = 0;
  for (std::size_t w = 0; w < scratch_.size(); ++w) {
    scratch_[w] = row[w] & mem.bits[w];
    degree += std::popcount(scratch_[w]);
  }
  return degree;
}

bool AssignmentState::scratch_insertion_infeasible(std::uint64_t degree,
                                                  std::size_t group) const {
  if (degree == 0) return false;  // no new pairs: port needs cannot grow past 2
  if (problem_->self_conflicting(group)) return true;
  const std::uint64_t* self_bits = problem_->self_conflict_bits();
  for (std::size_t w = 0; w < scratch_.size(); ++w) {
    if ((scratch_[w] & self_bits[w]) != 0) return true;
    std::uint64_t scan = scratch_[w];
    while (scan != 0) {
      const std::size_t v = w * 64 + static_cast<std::size_t>(std::countr_zero(scan));
      scan &= scan - 1;
      // Triangle: a neighbour of the group that conflicts with another one.
      const std::uint64_t* row_v = problem_->conflict_row(v);
      for (std::size_t w2 = 0; w2 < scratch_.size(); ++w2) {
        if ((row_v[w2] & scratch_[w2]) != 0) return true;
      }
    }
  }
  return false;
}

std::optional<double> AssignmentState::apply(std::size_t group, int new_m) {
  DTSE_DCHECK(group < assignment_.size(), "group index out of range");
  DTSE_DCHECK(new_m >= 0 && new_m < memory_count_, "memory index out of range");
  const int old_m = assignment_[group];
  DTSE_DCHECK(new_m != old_m, "move must change the memory");

  if (mode_ == CostMode::kFullRecost) {
    assignment_[group] = new_m;
    const auto summary = problem_->evaluate(assignment_, memory_count_);
    if (!summary) {
      assignment_[group] = old_m;
      last_.active = false;  // a failed move leaves nothing to revert
      return std::nullopt;
    }
    last_ = {group, old_m, new_m, {}, {}, 0, 0, scalar_, true};
    scalar_ = weights_.scalarize(*summary);
    return scalar_;
  }

  auto& src = memories_[static_cast<std::size_t>(old_m)];
  auto& dst = memories_[static_cast<std::size_t>(new_m)];
  const std::uint64_t degree_dst = neighbours_in(dst, group);
  if (scratch_insertion_infeasible(degree_dst, group)) {
    last_.active = false;  // a failed move leaves nothing to revert
    return std::nullopt;
  }
  const std::uint64_t degree_src = neighbours_in(src, group);
  const bool self = problem_->self_conflicting(group);

  insert_sorted(dst.members, group);
  dst.bits[group / 64] |= bit_of(group);
  dst.pair_conflicts += degree_dst;
  dst.self_conflicts += self ? 1 : 0;
  erase_sorted(src.members, group);
  src.bits[group / 64] &= ~bit_of(group);
  src.pair_conflicts -= degree_src;
  src.self_conflicts -= self ? 1 : 0;

  last_ = {group,      old_m,      new_m,   src.term, dst.term,
           degree_src, degree_dst, scalar_, true};
  src.term = problem_->member_cost_term(src.members, src.ports());
  dst.term = problem_->member_cost_term(dst.members, dst.ports());
  assignment_[group] = new_m;
  scalar_ = scalar_from_terms();
  return scalar_;
}

void AssignmentState::revert() {
  DTSE_CHECK(last_.active, "no move to revert");
  last_.active = false;
  assignment_[last_.group] = last_.from;
  scalar_ = last_.scalar;
  if (mode_ == CostMode::kFullRecost) return;

  const bool self = problem_->self_conflicting(last_.group);
  auto& src = memories_[static_cast<std::size_t>(last_.from)];
  auto& dst = memories_[static_cast<std::size_t>(last_.to)];
  erase_sorted(dst.members, last_.group);
  dst.bits[last_.group / 64] &= ~bit_of(last_.group);
  dst.pair_conflicts -= last_.degree_to;
  dst.self_conflicts -= self ? 1 : 0;
  insert_sorted(src.members, last_.group);
  src.bits[last_.group / 64] |= bit_of(last_.group);
  src.pair_conflicts += last_.degree_from;
  src.self_conflicts += self ? 1 : 0;
  src.term = last_.from_term;
  dst.term = last_.to_term;
}

}  // namespace dtse::alloc
