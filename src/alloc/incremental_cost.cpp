#include "alloc/incremental_cost.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dtse::alloc {

namespace {

void insert_sorted(std::vector<std::size_t>& members, std::size_t group) {
  members.insert(std::lower_bound(members.begin(), members.end(), group), group);
}

void erase_sorted(std::vector<std::size_t>& members, std::size_t group) {
  const auto it = std::lower_bound(members.begin(), members.end(), group);
  DTSE_DCHECK(it != members.end() && *it == group, "group not a member");
  members.erase(it);
}

}  // namespace

AssignmentState::AssignmentState(const AssignmentProblem& problem, int memory_count,
                                 const memlib::CostWeights& weights, CostMode mode)
    : problem_(&problem), weights_(weights), mode_(mode), memory_count_(memory_count) {
  DTSE_CHECK(memory_count >= 1, "need at least one memory");
}

double AssignmentState::scalar_from_terms() const {
  // Sum in memory-index order, skipping empty memories — the exact loop
  // `AssignmentProblem::evaluate` runs, so the floating-point result matches
  // a from-scratch evaluation bit-for-bit.
  memlib::CostSummary summary;
  for (const auto& mem : memories_) {
    if (mem.members.empty()) continue;
    summary.onchip_area_mm2 += mem.term.area_mm2;
    summary.onchip_power_mw += mem.term.power_mw;
  }
  return weights_.scalarize(summary);
}

memlib::CostTerm AssignmentState::onchip_total() const {
  if (mode_ == CostMode::kFullRecost) {
    const auto summary = problem_->evaluate(assignment_, memory_count_);
    DTSE_ASSERT(summary.has_value(), "state holds a feasible assignment");
    return {summary->onchip_area_mm2, summary->onchip_power_mw};
  }
  memlib::CostTerm total;
  for (const auto& mem : memories_) {
    if (!mem.members.empty()) total += mem.term;
  }
  return total;
}

bool AssignmentState::reset(const std::vector<int>& assignment) {
  DTSE_CHECK(assignment.size() == problem_->group_count(), "one entry per group");
  assignment_ = assignment;
  last_.active = false;

  if (mode_ == CostMode::kFullRecost) {
    const auto summary = problem_->evaluate(assignment_, memory_count_);
    if (!summary) return false;
    scalar_ = weights_.scalarize(*summary);
    return true;
  }

  memories_.assign(static_cast<std::size_t>(memory_count_), {});
  // Pre-size the member lists so moves never reallocate mid-run.
  for (auto& mem : memories_) mem.members.reserve(assignment_.size());
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    DTSE_CHECK(assignment_[i] >= 0 && assignment_[i] < memory_count_,
               "assignment entry out of range");
    memories_[static_cast<std::size_t>(assignment_[i])].members.push_back(i);
  }
  for (auto& mem : memories_) {
    const auto term = problem_->cost_of_members(mem.members);
    if (!term) return false;
    mem.term = *term;
  }
  scalar_ = scalar_from_terms();
  return true;
}

std::optional<double> AssignmentState::apply(std::size_t group, int new_m) {
  DTSE_DCHECK(group < assignment_.size(), "group index out of range");
  DTSE_DCHECK(new_m >= 0 && new_m < memory_count_, "memory index out of range");
  const int old_m = assignment_[group];
  DTSE_DCHECK(new_m != old_m, "move must change the memory");

  if (mode_ == CostMode::kFullRecost) {
    assignment_[group] = new_m;
    const auto summary = problem_->evaluate(assignment_, memory_count_);
    if (!summary) {
      assignment_[group] = old_m;
      last_.active = false;  // a failed move leaves nothing to revert
      return std::nullopt;
    }
    last_ = {group, old_m, new_m, {}, {}, scalar_, true};
    scalar_ = weights_.scalarize(*summary);
    return scalar_;
  }

  auto& src = memories_[static_cast<std::size_t>(old_m)];
  auto& dst = memories_[static_cast<std::size_t>(new_m)];
  insert_sorted(dst.members, group);
  const auto dst_term = problem_->cost_of_members(dst.members);
  if (!dst_term) {
    erase_sorted(dst.members, group);
    last_.active = false;  // a failed move leaves nothing to revert
    return std::nullopt;
  }
  erase_sorted(src.members, group);
  const auto src_term = problem_->cost_of_members(src.members);
  DTSE_ASSERT(src_term.has_value(), "removing a member cannot add conflicts");

  last_ = {group, old_m, new_m, src.term, dst.term, scalar_, true};
  src.term = *src_term;
  dst.term = *dst_term;
  assignment_[group] = new_m;
  scalar_ = scalar_from_terms();
  return scalar_;
}

void AssignmentState::revert() {
  DTSE_CHECK(last_.active, "no move to revert");
  last_.active = false;
  assignment_[last_.group] = last_.from;
  scalar_ = last_.scalar;
  if (mode_ == CostMode::kFullRecost) return;

  auto& src = memories_[static_cast<std::size_t>(last_.from)];
  auto& dst = memories_[static_cast<std::size_t>(last_.to)];
  erase_sorted(dst.members, last_.group);
  insert_sorted(src.members, last_.group);
  src.term = last_.from_term;
  dst.term = last_.to_term;
}

}  // namespace dtse::alloc
