// The signal-to-memory assignment problem — Section 4.6.
//
// Given the on-chip basic groups, the conflict graph from storage cycle
// budget distribution, and a number of memories N, assign every group to a
// memory such that all bandwidth constraints can be honoured, minimizing the
// technology-model cost.  The cost captures the paper's driving effects:
//
//  * a memory is as wide as its widest group — narrow groups stored next to
//    wide ones waste bits (area) and energy (full-width lines switch),
//  * energy per access is sub-linear in memory size, so distributing groups
//    over more memories reduces power,
//  * every memory pays a fixed periphery overhead, so too many memories
//    cost area,
//  * pairwise-conflicting groups in the same memory force a second port;
//    more than two simultaneous accesses to one memory are infeasible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/conflict_graph.hpp"
#include "ir/application.hpp"
#include "memlib/memory_library.hpp"

namespace dtse::alloc {

/// One allocated on-chip memory with its assigned groups.
struct MemoryInstance {
  std::vector<ir::BasicGroupId> groups;
  std::uint64_t words = 0;
  int width_bits = 0;
  memlib::PortCount ports = memlib::PortCount::kSingle;
  memlib::MemoryCost cost;
  double power_mw = 0.0;
};

/// Assignment problem instance over a fixed set of on-chip groups.
class AssignmentProblem {
 public:
  /// `groups` lists the on-chip basic groups to place; `frame_cycles` is the
  /// storage budget actually used (converts energy to power).
  AssignmentProblem(const ir::Application& app, std::vector<ir::BasicGroupId> groups,
                    const graph::ConflictGraph& conflicts,
                    const memlib::MemoryLibrary& library, std::uint64_t frame_cycles);

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] const std::vector<ir::BasicGroupId>& groups() const { return groups_; }
  [[nodiscard]] const ir::Application& app() const { return *app_; }
  [[nodiscard]] const memlib::MemoryLibrary& library() const { return *library_; }
  [[nodiscard]] std::uint64_t frame_cycles() const { return frame_cycles_; }

  /// True when groups i and j (problem-local indices) have a bandwidth
  /// conflict and may not share a single-port memory.
  [[nodiscard]] bool conflicting(std::size_t i, std::size_t j) const;

  /// True when group i needs two ports by itself.
  [[nodiscard]] bool self_conflicting(std::size_t i) const;

  /// Number of simultaneous accesses a member set must sustain, saturated at
  /// three: the size of the biggest pairwise-conflicting clique, counting
  /// self-conflicting members twice.  Because only the 1 / 2 / "more than 2"
  /// distinction matters (the port count of a shared memory; above two the
  /// set is infeasible), the computation is *exact*: it returns 3 iff the
  /// members contain a conflict triangle or a conflicting pair with a
  /// self-conflicting endpoint, 2 iff any conflict or self-conflict exists,
  /// and 1 otherwise.  (An earlier revision grew greedy cliques from each
  /// seed, which could miss a triangle and under-provision ports.)  Shared by
  /// `build_memory` and the incremental cost engine so both cost paths agree
  /// bit-for-bit.
  [[nodiscard]] int simultaneous_accesses(const std::vector<std::size_t>& members) const;

  /// Area/power term of a member set whose port count the caller has already
  /// established (`ports` in {1, 2}).  Runs the exact aggregation and model
  /// calls of `cost_of_members` after its feasibility gate — the entry point
  /// for the incremental cost engine, which maintains per-memory conflict
  /// counts and therefore knows the port count in O(members).
  [[nodiscard]] memlib::CostTerm member_cost_term(
      const std::vector<std::size_t>& members, int ports) const;

  // --- conflict bitsets (problem-local indices, 64 groups per word) --------
  /// Words per adjacency row; all bitsets below share this pitch.
  [[nodiscard]] std::size_t conflict_words() const { return conflict_words_; }
  /// Adjacency row of group i (bit j set iff i and j conflict).
  [[nodiscard]] const std::uint64_t* conflict_row(std::size_t i) const {
    return conflict_bits_.data() + i * conflict_words_;
  }
  /// Self-conflict bits over all groups.
  [[nodiscard]] const std::uint64_t* self_conflict_bits() const {
    return self_bits_.data();
  }

  /// Builds the physical memory for a set of member groups; returns nullopt
  /// when the members need more than two simultaneous ports (infeasible).
  [[nodiscard]] std::optional<MemoryInstance> build_memory(
      const std::vector<std::size_t>& members) const;

  /// Area/power contribution of a member set — the cost of the memory
  /// `build_memory` would build, without materializing the instance.  Both
  /// run the same aggregation over the same cached per-group figures and the
  /// same model calls, so the incremental cost engine (`AssignmentState`)
  /// and a from-scratch `evaluate` agree bit-for-bit by construction.
  /// nullopt when the set needs more than two ports.
  [[nodiscard]] std::optional<memlib::CostTerm> cost_of_members(
      const std::vector<std::size_t>& members) const;

  /// Area + power of a complete assignment (assignment[i] in [0, N));
  /// nullopt when any memory is infeasible.
  [[nodiscard]] std::optional<memlib::CostSummary> evaluate(
      const std::vector<int>& assignment, int memory_count) const;

  /// Lower bound on the number of memories any feasible assignment needs.
  [[nodiscard]] int min_memories() const;

 private:
  /// Per-group figures cached at construction (the access totals walk every
  /// loop body, far too slow to redo per candidate memory).
  struct GroupAggregates {
    std::uint64_t words = 0;
    int width_bits = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  /// Sums of the members' cached figures, in member order.
  [[nodiscard]] GroupAggregates aggregate_members(
      const std::vector<std::size_t>& members) const;

  [[nodiscard]] bool test_bit(const std::uint64_t* bits, std::size_t i) const {
    return (bits[i / 64] >> (i % 64)) & 1u;
  }

  const ir::Application* app_;
  std::vector<ir::BasicGroupId> groups_;
  const memlib::MemoryLibrary* library_;
  std::uint64_t frame_cycles_;
  std::size_t conflict_words_ = 0;            ///< bitset row pitch in words
  std::vector<std::uint64_t> conflict_bits_;  ///< n adjacency rows of conflict_words_
  std::vector<std::uint64_t> self_bits_;
  std::vector<GroupAggregates> aggregates_;   ///< per problem-local group
};

}  // namespace dtse::alloc
