#include "alloc/assignment_problem.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace dtse::alloc {

AssignmentProblem::AssignmentProblem(const ir::Application& app,
                                     std::vector<ir::BasicGroupId> groups,
                                     const graph::ConflictGraph& conflicts,
                                     const memlib::MemoryLibrary& library,
                                     std::uint64_t frame_cycles)
    : app_(&app),
      groups_(std::move(groups)),
      library_(&library),
      frame_cycles_(frame_cycles) {
  DTSE_CHECK(frame_cycles_ > 0, "frame cycle count must be positive");
  const std::size_t n = groups_.size();
  conflict_words_ = (n + 63) / 64;
  conflict_bits_.assign(n * conflict_words_, 0);
  self_bits_.assign(conflict_words_, 0);
  aggregates_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (conflicts.has_self_conflict(groups_[i])) {
      self_bits_[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool c = conflicts.conflicts(groups_[i], groups_[j]) &&
                     conflicts.conflict_weight(groups_[i], groups_[j]) > 0.0;
      if (c) {
        conflict_bits_[i * conflict_words_ + j / 64] |= std::uint64_t{1} << (j % 64);
        conflict_bits_[j * conflict_words_ + i / 64] |= std::uint64_t{1} << (i % 64);
      }
    }
    const auto& group = app_->group(groups_[i]);
    const auto totals = app_->totals(groups_[i]);
    aggregates_[i] = {group.words, group.bitwidth, static_cast<std::uint64_t>(totals.reads),
                      static_cast<std::uint64_t>(totals.writes)};
  }
}

AssignmentProblem::GroupAggregates AssignmentProblem::aggregate_members(
    const std::vector<std::size_t>& members) const {
  GroupAggregates sum;
  for (const auto m : members) {
    sum.words += aggregates_[m].words;
    sum.width_bits = std::max(sum.width_bits, aggregates_[m].width_bits);
    sum.reads += aggregates_[m].reads;
    sum.writes += aggregates_[m].writes;
  }
  return sum;
}

bool AssignmentProblem::conflicting(std::size_t i, std::size_t j) const {
  DTSE_CHECK(i < groups_.size() && j < groups_.size(), "group index out of range");
  return test_bit(conflict_row(i), j);
}

bool AssignmentProblem::self_conflicting(std::size_t i) const {
  DTSE_CHECK(i < groups_.size(), "group index out of range");
  return test_bit(self_bits_.data(), i);
}

int AssignmentProblem::simultaneous_accesses(const std::vector<std::size_t>& members) const {
  // Exact 1 / 2 / >2 classification on the conflict bitsets (see header).
  // This sits on the inner loop of every solver, so the member-set scratch
  // bitset lives on the stack for all realistic group counts.
  constexpr std::size_t kInlineWords = 16;  // 1024 groups
  std::uint64_t inline_bits[kInlineWords] = {};
  std::vector<std::uint64_t> heap_bits;
  std::uint64_t* member_bits = inline_bits;
  const std::size_t words = conflict_words_;
  if (words > kInlineWords) {
    heap_bits.assign(words, 0);
    member_bits = heap_bits.data();
  }
  for (const auto m : members) member_bits[m / 64] |= std::uint64_t{1} << (m % 64);

  bool pair_or_self = false;
  for (const auto u : members) {
    const std::uint64_t* row_u = conflict_row(u);
    std::uint64_t degree_bits = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t neighbours = row_u[w] & member_bits[w];
      degree_bits |= neighbours;
      if (neighbours == 0) continue;
      // A conflicting pair with a self-conflicting endpoint needs 3 ports.
      if ((neighbours & self_bits_[w]) != 0) return 3;
      // A triangle through u: two of u's in-set neighbours conflict.  Each
      // neighbour v contributes its own in-set neighbourhood; overlap with
      // u's means a common edge.  Scanning only v > u visits each edge once.
      std::uint64_t scan = neighbours;
      if (w < u / 64) {
        scan = 0;
      } else if (w == u / 64) {
        scan &= ~(((std::uint64_t{1} << (u % 64)) << 1) - 1);  // bits above u
      }
      while (scan != 0) {
        const std::size_t v = w * 64 + static_cast<std::size_t>(__builtin_ctzll(scan));
        scan &= scan - 1;
        const std::uint64_t* row_v = conflict_row(v);
        for (std::size_t w2 = 0; w2 < words; ++w2) {
          if ((row_v[w2] & row_u[w2] & member_bits[w2]) != 0) return 3;
        }
      }
    }
    if (degree_bits != 0) {
      pair_or_self = true;
      if (test_bit(self_bits_.data(), u)) return 3;  // u itself needs two ports
    } else if (test_bit(self_bits_.data(), u)) {
      pair_or_self = true;
    }
  }
  return pair_or_self ? 2 : 1;
}

std::optional<MemoryInstance> AssignmentProblem::build_memory(
    const std::vector<std::size_t>& members) const {
  if (members.empty()) return MemoryInstance{};

  const int ports_needed = simultaneous_accesses(members);
  if (ports_needed > 2) return std::nullopt;  // no tri-ported generator blocks

  MemoryInstance mem;
  mem.ports = ports_needed == 2 ? memlib::PortCount::kDual : memlib::PortCount::kSingle;
  mem.groups.reserve(members.size());
  for (const auto m : members) mem.groups.push_back(groups_[m]);
  const auto agg = aggregate_members(members);
  mem.words = agg.words;
  mem.width_bits = agg.width_bits;
  mem.cost = library_->sram().cost(mem.words, mem.width_bits, mem.ports);
  mem.power_mw = library_->onchip_power_mw(mem.cost, agg.reads, agg.writes, frame_cycles_);
  return mem;
}

memlib::CostTerm AssignmentProblem::member_cost_term(
    const std::vector<std::size_t>& members, int ports) const {
  DTSE_DCHECK(ports == 1 || ports == 2, "memories have one or two ports");
  if (members.empty()) return memlib::CostTerm{};
  const auto agg = aggregate_members(members);
  const auto cost = library_->sram().cost(
      agg.words, agg.width_bits,
      ports == 2 ? memlib::PortCount::kDual : memlib::PortCount::kSingle);
  const double power = library_->onchip_power_mw(cost, agg.reads, agg.writes, frame_cycles_);
  return memlib::CostTerm{cost.area_mm2, power};
}

std::optional<memlib::CostTerm> AssignmentProblem::cost_of_members(
    const std::vector<std::size_t>& members) const {
  if (members.empty()) return memlib::CostTerm{};
  const int ports_needed = simultaneous_accesses(members);
  if (ports_needed > 2) return std::nullopt;
  return member_cost_term(members, ports_needed);
}

std::optional<memlib::CostSummary> AssignmentProblem::evaluate(
    const std::vector<int>& assignment, int memory_count) const {
  DTSE_CHECK(assignment.size() == groups_.size(), "one assignment entry per group");
  std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(memory_count));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    DTSE_CHECK(assignment[i] >= 0 && assignment[i] < memory_count,
               "assignment entry out of range");
    members[static_cast<std::size_t>(assignment[i])].push_back(i);
  }
  memlib::CostSummary summary;
  for (const auto& m : members) {
    if (m.empty()) continue;
    const auto mem = build_memory(m);
    if (!mem) return std::nullopt;
    summary.onchip_area_mm2 += mem->cost.area_mm2;
    summary.onchip_power_mw += mem->power_mw;
  }
  return summary;
}

int AssignmentProblem::min_memories() const {
  // Greedy colouring bound: self-conflicting groups can still share a
  // dual-port memory alone, so only pairwise conflicts force extra memories
  // (a pair of conflicting groups could also share one dual-port memory, but
  // a clique of three cannot — use the clique bound over pairs, halved by
  // the dual-port option, never below 1).
  int clique = 1;
  const std::size_t n = groups_.size();
  for (std::size_t seed = 0; seed < n; ++seed) {
    std::vector<std::size_t> c{seed};
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (cand == seed) continue;
      const bool adj = std::all_of(c.begin(), c.end(), [&](std::size_t m) {
        return m != cand && test_bit(conflict_row(m), cand);
      });
      if (adj) c.push_back(cand);
    }
    clique = std::max(clique, static_cast<int>(c.size()));
  }
  // Two mutually conflicting groups fit in one dual-port memory.
  return std::max(1, (clique + 1) / 2);
}

}  // namespace dtse::alloc
