#include "alloc/assignment_problem.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dtse::alloc {

AssignmentProblem::AssignmentProblem(const ir::Application& app,
                                     std::vector<ir::BasicGroupId> groups,
                                     const graph::ConflictGraph& conflicts,
                                     const memlib::MemoryLibrary& library,
                                     std::uint64_t frame_cycles)
    : app_(&app),
      groups_(std::move(groups)),
      library_(&library),
      frame_cycles_(frame_cycles) {
  DTSE_CHECK(frame_cycles_ > 0, "frame cycle count must be positive");
  const std::size_t n = groups_.size();
  conflict_.assign(n, std::vector<bool>(n, false));
  self_conflict_.assign(n, false);
  aggregates_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    self_conflict_[i] = conflicts.has_self_conflict(groups_[i]);
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool c = conflicts.conflicts(groups_[i], groups_[j]) &&
                     conflicts.conflict_weight(groups_[i], groups_[j]) > 0.0;
      conflict_[i][j] = conflict_[j][i] = c;
    }
    const auto& group = app_->group(groups_[i]);
    const auto totals = app_->totals(groups_[i]);
    aggregates_[i] = {group.words, group.bitwidth, static_cast<std::uint64_t>(totals.reads),
                      static_cast<std::uint64_t>(totals.writes)};
  }
}

AssignmentProblem::GroupAggregates AssignmentProblem::aggregate_members(
    const std::vector<std::size_t>& members) const {
  GroupAggregates sum;
  for (const auto m : members) {
    sum.words += aggregates_[m].words;
    sum.width_bits = std::max(sum.width_bits, aggregates_[m].width_bits);
    sum.reads += aggregates_[m].reads;
    sum.writes += aggregates_[m].writes;
  }
  return sum;
}

bool AssignmentProblem::conflicting(std::size_t i, std::size_t j) const {
  DTSE_CHECK(i < groups_.size() && j < groups_.size(), "group index out of range");
  return conflict_[i][j];
}

bool AssignmentProblem::self_conflicting(std::size_t i) const {
  DTSE_CHECK(i < groups_.size(), "group index out of range");
  return self_conflict_[i];
}

int AssignmentProblem::simultaneous_accesses(const std::vector<std::size_t>& members) const {
  // The largest set of members that pairwise conflict, counting a
  // self-conflicting member twice.  Member sets are small, so a greedy
  // clique from each seed is effectively exact here.  This sits on the inner
  // loop of every solver (each candidate memory costs one call), so the
  // clique scratch lives on the stack for all realistic member counts.
  constexpr std::size_t kInlineMembers = 32;
  std::size_t inline_clique[kInlineMembers];
  std::vector<std::size_t> heap_clique;
  std::size_t* clique = inline_clique;
  if (members.size() > kInlineMembers) {
    heap_clique.resize(members.size());
    clique = heap_clique.data();
  }

  int ports_needed = 1;
  for (const auto seed : members) {
    std::size_t clique_size = 0;
    clique[clique_size++] = seed;
    for (const auto candidate : members) {
      if (candidate == seed) continue;
      bool adjacent = true;
      for (std::size_t i = 0; i < clique_size; ++i) {
        if (clique[i] == candidate || !conflict_[clique[i]][candidate]) {
          adjacent = false;
          break;
        }
      }
      if (adjacent) clique[clique_size++] = candidate;
    }
    int simultaneous = static_cast<int>(clique_size);
    for (std::size_t i = 0; i < clique_size; ++i) {
      if (self_conflict_[clique[i]]) ++simultaneous;
    }
    ports_needed = std::max(ports_needed, simultaneous);
  }
  return ports_needed;
}

std::optional<MemoryInstance> AssignmentProblem::build_memory(
    const std::vector<std::size_t>& members) const {
  if (members.empty()) return MemoryInstance{};

  const int ports_needed = simultaneous_accesses(members);
  if (ports_needed > 2) return std::nullopt;  // no tri-ported generator blocks

  MemoryInstance mem;
  mem.ports = ports_needed == 2 ? memlib::PortCount::kDual : memlib::PortCount::kSingle;
  mem.groups.reserve(members.size());
  for (const auto m : members) mem.groups.push_back(groups_[m]);
  const auto agg = aggregate_members(members);
  mem.words = agg.words;
  mem.width_bits = agg.width_bits;
  mem.cost = library_->sram().cost(mem.words, mem.width_bits, mem.ports);
  mem.power_mw = library_->onchip_power_mw(mem.cost, agg.reads, agg.writes, frame_cycles_);
  return mem;
}

std::optional<memlib::CostTerm> AssignmentProblem::cost_of_members(
    const std::vector<std::size_t>& members) const {
  if (members.empty()) return memlib::CostTerm{};
  const int ports_needed = simultaneous_accesses(members);
  if (ports_needed > 2) return std::nullopt;
  const auto agg = aggregate_members(members);
  const auto cost = library_->sram().cost(
      agg.words, agg.width_bits,
      ports_needed == 2 ? memlib::PortCount::kDual : memlib::PortCount::kSingle);
  const double power = library_->onchip_power_mw(cost, agg.reads, agg.writes, frame_cycles_);
  return memlib::CostTerm{cost.area_mm2, power};
}

std::optional<memlib::CostSummary> AssignmentProblem::evaluate(
    const std::vector<int>& assignment, int memory_count) const {
  DTSE_CHECK(assignment.size() == groups_.size(), "one assignment entry per group");
  std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(memory_count));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    DTSE_CHECK(assignment[i] >= 0 && assignment[i] < memory_count,
               "assignment entry out of range");
    members[static_cast<std::size_t>(assignment[i])].push_back(i);
  }
  memlib::CostSummary summary;
  for (const auto& m : members) {
    if (m.empty()) continue;
    const auto mem = build_memory(m);
    if (!mem) return std::nullopt;
    summary.onchip_area_mm2 += mem->cost.area_mm2;
    summary.onchip_power_mw += mem->power_mw;
  }
  return summary;
}

int AssignmentProblem::min_memories() const {
  // Greedy colouring bound: self-conflicting groups can still share a
  // dual-port memory alone, so only pairwise conflicts force extra memories
  // (a pair of conflicting groups could also share one dual-port memory, but
  // a clique of three cannot — use the clique bound over pairs, halved by
  // the dual-port option, never below 1).
  int clique = 1;
  const std::size_t n = groups_.size();
  for (std::size_t seed = 0; seed < n; ++seed) {
    std::vector<std::size_t> c{seed};
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (cand == seed) continue;
      const bool adj = std::all_of(c.begin(), c.end(), [&](std::size_t m) {
        return m != cand && conflict_[m][cand];
      });
      if (adj) c.push_back(cand);
    }
    clique = std::max(clique, static_cast<int>(c.size()));
  }
  // Two mutually conflicting groups fit in one dual-port memory.
  return std::max(1, (clique + 1) / 2);
}

}  // namespace dtse::alloc
