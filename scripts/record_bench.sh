#!/usr/bin/env bash
# Records one benchmark trajectory point, per the bench/README.md
# methodology: builds perf_microbench in Release and snapshots its JSON
# output into bench/BENCH_YYYYMMDD.json.  The nightly CI job runs this and
# uploads the file as an artifact; run it locally and commit the file to pin
# a before/after reference next to a perf-relevant change.
#
#   BUILD_DIR=build STAMP=20260729 scripts/record_bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
STAMP="${STAMP:-$(date +%Y%m%d)}"
OUT="bench/BENCH_${STAMP}.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target perf_microbench
"./${BUILD_DIR}/perf_microbench" --benchmark_format=json > "$OUT"

# The trajectory must cover the workload-roster benchmarks: a snapshot that
# silently dropped them (filtered run, renamed bench) would let the nightly
# compare gate pass on an empty intersection.  The *Scalar twins must be
# present too — without both halves the scalar-vs-SIMD ratio in the
# trajectory is unreadable.
for bench in BM_MotionEstimate BM_MotionEstimateScalar \
             BM_ExploreMotion BM_ExploreMultiWorkload \
             BM_HyperspecEncode BM_HyperspecEncodeScalar BM_ProfiledFeedback256 \
             BM_PersistRoundTrip BM_ProfileCacheHit \
             BM_BitWriterThroughput BM_BitReaderThroughput \
             BM_EncodeLossless BM_EncodeLosslessScalar \
             BM_EntropyHuffman BM_EntropyRice BM_EntropyExpGolomb BM_EntropyRans \
             BM_TelemetryOverhead; do
  if ! grep -q "\"$bench" "$OUT"; then
    echo "error: $OUT is missing $bench — incomplete trajectory point" >&2
    exit 1
  fi
done
echo "wrote $OUT"
