#!/usr/bin/env python3
"""Validate and diff the explore run report and Chrome trace.

Two subcommands, used by CI and available locally:

  check_report.py validate REPORT [--trace TRACE]
      Schema-checks the --report-out JSON (version, required keys, point
      shapes) and, when given, the --trace-out Chrome trace (well-formed
      events, non-negative 'X' durations, balanced B/E pairs per lane).

  check_report.py diff A B
      Asserts two reports are identical modulo the wall-clock allowlist —
      the determinism contract: counters, points, convergence series and
      cache stats must match bit for bit across reruns and parallelism
      settings; only timestamp/duration values may differ.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

# The only keys whose *values* are allowed to differ between two runs of the
# same configuration.  Everything else in the report is deterministic.
ALLOWLIST_KEYS = {"duration_us", "total_us", "ts", "dur"}

REPORT_VERSION = 1
REPORT_KEYS = {
    "dtse_report_version",
    "workloads",
    "points",
    "pareto_front",
    "solver",
    "cache",
    "metrics",
}
POINT_KEYS = {
    "section",
    "label",
    "feasible",
    "timed_out",
    "error",
    "onchip_area_mm2",
    "onchip_power_mw",
    "offchip_power_mw",
    "spare_cycles",
}
CACHE_KEYS = {"hits", "misses", "stores", "quarantined", "evicted", "store_failures"}
METRIC_KEYS = {"counters", "gauges", "histograms", "timings"}


def fail(message):
    print(f"check_report: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")


def validate_report(path):
    report = load(path)
    if not isinstance(report, dict):
        fail(f"{path}: top level must be an object")
    missing = REPORT_KEYS - report.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if report["dtse_report_version"] != REPORT_VERSION:
        fail(f"{path}: unsupported report version {report['dtse_report_version']}")
    for workload in report["workloads"]:
        if {"name", "golden_passed", "detail"} - workload.keys():
            fail(f"{path}: malformed workload entry {workload}")
    for point in report["points"]:
        missing = POINT_KEYS - point.keys()
        if missing:
            fail(f"{path}: point '{point.get('label')}' missing {sorted(missing)}")
    if CACHE_KEYS - report["cache"].keys():
        fail(f"{path}: cache section missing keys")
    if METRIC_KEYS - report["metrics"].keys():
        fail(f"{path}: metrics section missing keys")
    for entry in report["solver"]:
        for chain in entry.get("chains", []):
            samples = chain.get("convergence", [])
            iterations = [sample["iteration"] for sample in samples]
            if iterations != sorted(iterations):
                fail(f"{path}: solver '{entry['label']}' has a non-monotonic series")
    print(f"{path}: ok ({len(report['points'])} points, "
          f"{len(report['solver'])} convergence entries)")


def validate_trace(path):
    trace = load(path)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")
    open_begins = {}  # (pid, tid) -> depth
    for event in events:
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event missing '{key}': {event}")
        lane = (event["pid"], event["tid"])
        phase = event["ph"]
        if phase == "X":
            if event.get("dur", -1) < 0 or event.get("ts", -1) < 0:
                fail(f"{path}: 'X' event with bad ts/dur: {event}")
        elif phase == "B":
            open_begins[lane] = open_begins.get(lane, 0) + 1
        elif phase == "E":
            if open_begins.get(lane, 0) == 0:
                fail(f"{path}: 'E' without matching 'B' on lane {lane}")
            open_begins[lane] -= 1
    unbalanced = {lane: depth for lane, depth in open_begins.items() if depth}
    if unbalanced:
        fail(f"{path}: unbalanced 'B' events: {unbalanced}")
    print(f"{path}: ok ({len(events)} events)")


def normalize(node):
    """Zeroes every allowlisted wall-clock value, recursively."""
    if isinstance(node, dict):
        return {
            key: 0 if key in ALLOWLIST_KEYS else normalize(value)
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [normalize(item) for item in node]
    return node


def diff_reports(path_a, path_b):
    a = normalize(load(path_a))
    b = normalize(load(path_b))
    if a == b:
        print(f"{path_a} == {path_b} (modulo {sorted(ALLOWLIST_KEYS)})")
        return
    # Point at the first diverging top-level section to keep failures usable.
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            fail(f"reports differ outside the wall-clock allowlist: section '{key}'")
    fail("reports differ outside the wall-clock allowlist")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)
    validate = commands.add_parser("validate", help="schema-check a report")
    validate.add_argument("report")
    validate.add_argument("--trace", help="also check a Chrome trace file")
    diff = commands.add_parser("diff", help="compare two reports modulo wall-clock")
    diff.add_argument("a")
    diff.add_argument("b")
    args = parser.parse_args()

    if args.command == "validate":
        validate_report(args.report)
        if args.trace:
            validate_trace(args.trace)
    else:
        diff_reports(args.a, args.b)


if __name__ == "__main__":
    main()
