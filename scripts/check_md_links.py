#!/usr/bin/env python3
"""Markdown link checker: docs must not rot.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, and fails when a relative target
does not exist on disk.  External schemes (http/https/mailto) are skipped —
CI must not depend on the network — and pure in-page anchors (#...) are
checked only for non-emptiness.

Usage: scripts/check_md_links.py [root]        (root defaults to the repo root)
"""
import os
import re
import subprocess
import sys

# Inline links/images, tolerating one level of nested parentheses in the URL
# and an optional quoted title after it; reference-style definitions at line
# start.
INLINE = re.compile(
    r"!?\[[^\]]*\]\(\s*([^()\s]*(?:\([^()]*\)[^()\s]*)*)(?:\s+[\"'][^()]*[\"'])?\s*\)")
REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown(root):
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"], cwd=root,
                         capture_output=True, text=True, check=True).stdout
    return sorted(set(line for line in out.splitlines() if line))


def check_file(root, md):
    with open(os.path.join(root, md), encoding="utf-8") as f:
        text = FENCE.sub("", f.read())  # links inside code fences are examples
    errors = []
    targets = INLINE.findall(text) + REFDEF.findall(text)
    for target in targets:
        target = target.strip("<>")
        if not target:
            errors.append(f"{md}: empty link target")
            continue
        if target.startswith(SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            continue  # in-page anchor; existence is the renderer's business
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(root, os.path.dirname(md), path))
        if not os.path.exists(resolved):
            errors.append(f"{md}: broken link -> {target}")
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..")
    root = os.path.abspath(root)
    failures = []
    files = tracked_markdown(root)
    for md in files:
        failures.extend(check_file(root, md))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {len(files)} markdown files, {len(failures)} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
