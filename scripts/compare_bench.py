#!/usr/bin/env python3
"""Compare two perf_microbench JSON snapshots and fail on regressions.

Usage:
    compare_bench.py baseline.json current.json [--threshold 0.20]

Benchmarks are matched by name; a benchmark counts as regressed when its
current real_time exceeds the baseline's by more than the threshold (after
normalizing time units).  Benchmarks that report a `final_cost` counter (the
bit-exactness anchor of the annealing benches) are additionally checked for
*any* drift: the solvers are deterministic, so a changed final_cost is a
correctness regression and fails the gate exactly like a perf regression.
Benchmarks present on only one side are reported but never fail the
comparison, so adding or retiring benchmarks does not break the nightly
gate.  Exit status: 0 = no regression, 1 = at least one benchmark regressed
or drifted, 2 = malformed input.

The nightly CI job runs this against the last *committed* bench/BENCH_*.json
(see .github/workflows/ci.yml); run it locally before quoting perf deltas:

    scripts/record_bench.sh
    python3 scripts/compare_bench.py bench/BENCH_<old>.json bench/BENCH_<new>.json
"""

import argparse
import json
import math
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: (real_time_ns, final_cost_or_None)} per benchmark."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        benchmarks = {}
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            unit = _UNIT_NS.get(entry.get("time_unit", "ns"))
            if unit is None:
                raise ValueError(f"unknown time_unit in {entry['name']}")
            final_cost = entry.get("final_cost")
            if final_cost is not None:
                final_cost = float(final_cost)
            benchmarks[entry["name"]] = (float(entry["real_time"]) * unit, final_cost)
        return benchmarks
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as error:
        print(f"error: cannot read benchmark JSON {path}: {error}", file=sys.stderr)
        sys.exit(2)


def format_ns(value_ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if value_ns >= scale:
            return f"{value_ns / scale:.3g} {unit}"
    return f"{value_ns:.3g} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline JSON (last committed BENCH_*.json)")
    parser.add_argument("current", help="freshly recorded JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative real_time growth (default 0.20)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    drifts = []
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: the snapshots share no benchmark names", file=sys.stderr)
        sys.exit(2)
    width = max(len(name) for name in shared)
    for name in shared:
        base_ns, base_cost = baseline[name]
        cur_ns, cur_cost = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        marker = " REGRESSED" if ratio > 1.0 + args.threshold else ""
        # The solvers are deterministic; any final_cost drift between two
        # snapshots of the same benchmark is a correctness change, not timing
        # noise (the epsilon absorbs JSON round-tripping and FP accumulation
        # order only).  Caveat: across *different* machines or toolchains a
        # libm change can flip a single SA acceptance and move final_cost
        # legitimately — when that happens, re-record the baseline on the
        # environment that runs the gate and commit it with the explanation.
        drifted = (base_cost is not None and cur_cost is not None
                   and not math.isclose(base_cost, cur_cost, rel_tol=1e-7, abs_tol=0.0))
        if drifted:
            marker += f" FINAL_COST DRIFT ({base_cost!r} -> {cur_cost!r})"
            drifts.append((name, base_cost, cur_cost))
        elif (base_cost is None) != (cur_cost is None):
            # A one-sided counter silently disables the drift check for this
            # benchmark — say so instead of passing it green without comment.
            side = "baseline" if base_cost is not None else "current"
            marker += f" final_cost only in {side} (drift check skipped)"
        print(f"{name:<{width}}  {format_ns(base_ns):>10} -> "
              f"{format_ns(cur_ns):>10}  ({ratio - 1.0:+.1%} vs baseline){marker}")
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  only in baseline (ignored)")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  only in current (ignored)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline real_time")
    if drifts:
        print(f"\n{len(drifts)} benchmark(s) drifted in final_cost vs "
              f"{args.baseline} (bit-exactness regression):")
        for name, base_cost, cur_cost in drifts:
            print(f"  {name}: {base_cost!r} -> {cur_cost!r}")
    if regressions or drifts:
        return 1
    print(f"\nno regression beyond {args.threshold:.0%} and no final_cost drift "
          f"across {len(shared)} shared benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
